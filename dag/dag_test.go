package dag

import (
	"math/rand"
	"testing"

	"stint"
	"stint/internal/oracle"
)

func TestTopoOrderValid(t *testing.T) {
	g := NewGraph()
	a, b, c, d := g.Node("a"), g.Node("b"), g.Node("c"), g.Node("d")
	g.Edge(a, b)
	g.Edge(a, c)
	g.Edge(b, d)
	g.Edge(c, d)
	order, err := g.topoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for from, succs := range g.succs {
		for _, to := range succs {
			if pos[NodeID(from)] >= pos[to] {
				t.Fatalf("edge (%d,%d) violated by order %v", from, to, order)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := NewGraph()
	a, b, c := g.Node("a"), g.Node("b"), g.Node("c")
	g.Serial(a, b, c)
	g.Edge(c, a)
	r, _ := NewRunner(Options{})
	if _, err := r.Run(g, func(*Node, NodeID) {}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	r, _ := NewRunner(Options{})
	if _, err := r.Run(NewGraph(), func(*Node, NodeID) {}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBadEdgePanics(t *testing.T) {
	g := NewGraph()
	a := g.Node("a")
	for _, f := range []func(){
		func() { g.Edge(a, 99) },
		func() { g.Edge(a, a) },
		func() { g.Edge(-1, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReachabilityBitsets(t *testing.T) {
	// Diamond: a → b,c → d plus a detached node e.
	g := NewGraph()
	a, b, c, d, e := g.Node("a"), g.Node("b"), g.Node("c"), g.Node("d"), g.Node("e")
	g.Edge(a, b)
	g.Edge(a, c)
	g.Edge(b, d)
	g.Edge(c, d)
	order, _ := g.topoOrder()
	r := newReach(g, order)
	series := [][2]NodeID{{a, b}, {a, c}, {a, d}, {b, d}, {c, d}}
	for _, p := range series {
		if !r.series(p[0], p[1]) {
			t.Errorf("series(%d,%d) = false", p[0], p[1])
		}
		if r.series(p[1], p[0]) {
			t.Errorf("series(%d,%d) = true (reversed)", p[1], p[0])
		}
		if r.Parallel(p[0], p[1]) {
			t.Errorf("Parallel(%d,%d) = true for series pair", p[0], p[1])
		}
	}
	for _, p := range [][2]NodeID{{b, c}, {e, a}, {e, d}} {
		if !r.Parallel(p[0], p[1]) || !r.Parallel(p[1], p[0]) {
			t.Errorf("Parallel(%d,%d) = false", p[0], p[1])
		}
	}
}

// runGraph executes accesses[id] on each node and returns the report.
type acc struct {
	write bool
	idx   int
	n     int
}

func runGraph(t *testing.T, g *Graph, accesses map[NodeID][]acc, bufWords int) *stint.Report {
	t.Helper()
	r, err := NewRunner(Options{MaxRacesRecorded: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("data", bufWords)
	rep, err := r.Run(g, func(n *Node, id NodeID) {
		for _, a := range accesses[id] {
			if a.write {
				n.StoreRange(buf, a.idx, a.n)
			} else {
				n.LoadRange(buf, a.idx, a.n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDiamondJoinOrdersAccesses(t *testing.T) {
	g := NewGraph()
	a, b, c, d := g.Node("a"), g.Node("b"), g.Node("c"), g.Node("d")
	g.Edge(a, b)
	g.Edge(a, c)
	g.Edge(b, d)
	g.Edge(c, d)
	rep := runGraph(t, g, map[NodeID][]acc{
		a: {{write: true, idx: 0, n: 8}},
		b: {{idx: 0, n: 8}},
		c: {{idx: 0, n: 4}},
		d: {{write: true, idx: 0, n: 8}}, // after the join: ordered
	}, 16)
	if rep.Racy() {
		t.Fatalf("diamond with join reported races: %v", rep.Races)
	}
}

func TestParallelBranchesRace(t *testing.T) {
	g := NewGraph()
	a, b, c := g.Node("a"), g.Node("b"), g.Node("c")
	g.Edge(a, b)
	g.Edge(a, c)
	rep := runGraph(t, g, map[NodeID][]acc{
		b: {{write: true, idx: 4, n: 4}},
		c: {{write: true, idx: 6, n: 4}},
	}, 16)
	if !rep.Racy() {
		t.Fatal("parallel overlapping writes missed")
	}
}

func TestSingleReaderWouldMissThisRace(t *testing.T) {
	// The §7 counterexample: two parallel readers r1 and r2; a writer w
	// ordered after r2 only. Whatever single reader a fork-join-style
	// access history kept, one choice (r2) hides the race with r1. The
	// multi-reader antichain keeps both and reports w racing with r1.
	g := NewGraph()
	a := g.Node("src")
	r1 := g.Node("r1")
	r2 := g.Node("r2")
	w := g.Node("w")
	g.Edge(a, r1)
	g.Edge(a, r2)
	g.Edge(r2, w) // w sees r2's read as ordered; r1 stays parallel
	rep := runGraph(t, g, map[NodeID][]acc{
		a:  {{write: true, idx: 0, n: 4}},
		r1: {{idx: 0, n: 4}},
		r2: {{idx: 0, n: 4}},
		w:  {{write: true, idx: 0, n: 4}},
	}, 8)
	if !rep.Racy() {
		t.Fatal("multi-reader history missed the r1-w race")
	}
	found := false
	for _, rc := range rep.Races {
		if rc.Prev == r1 && rc.Cur == w && !rc.PrevWrite && rc.CurWrite {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a (r1 read, w write) report; got %v", rep.Races)
	}
}

func TestAntichainPruningKeepsHistorySmall(t *testing.T) {
	// A long serial chain re-reading one buffer: the reader set must stay
	// at size one throughout.
	g := NewGraph()
	var prev NodeID = g.Node("n0")
	for i := 1; i < 50; i++ {
		n := g.Node("n")
		g.Edge(prev, n)
		prev = n
	}
	r, _ := NewRunner(Options{})
	buf := r.Arena().AllocWords("data", 16)
	var lastEngineReaders int
	rep, err := r.Run(g, func(n *Node, id NodeID) {
		n.LoadRange(buf, 0, 16)
		lastEngineReaders = n.eng.readHist.Readers()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("serial chain raced")
	}
	if lastEngineReaders > 1 {
		t.Fatalf("reader footprint %d; pruning should keep a serial chain at 1", lastEngineReaders)
	}
}

// randomDAGProgram builds a random DAG with random accesses and the
// matching oracle run.
func TestRandomDAGsMatchOracle(t *testing.T) {
	const bufWords = 32
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := rng.Intn(12) + 4
		for i := 0; i < n; i++ {
			g.Node("n")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.Edge(NodeID(i), NodeID(j))
				}
			}
		}
		accesses := make(map[NodeID][]acc)
		for i := 0; i < n; i++ {
			k := rng.Intn(4)
			for a := 0; a < k; a++ {
				idx := rng.Intn(bufWords)
				accesses[NodeID(i)] = append(accesses[NodeID(i)], acc{
					write: rng.Intn(2) == 0,
					idx:   idx,
					n:     rng.Intn(bufWords-idx) + 1,
				})
			}
		}

		// Oracle: drive the brute-force detector over the same order.
		order, err := g.topoOrder()
		if err != nil {
			t.Fatal(err)
		}
		rc := newReach(g, order)
		det := oracle.New(rc)
		oArena, _ := NewRunner(Options{})
		oBuf := oArena.Arena().AllocWords("data", bufWords)
		for _, id := range order {
			rc.cur = id
			for _, a := range accesses[id] {
				addr, size := oBuf.Range(a.idx, a.n)
				if a.write {
					det.WriteHook(addr, size)
				} else {
					det.ReadHook(addr, size)
				}
			}
		}
		want := det.RacingWords()

		words := make(map[stint.Addr]bool)
		r, _ := NewRunner(Options{MaxRacesRecorded: 1, OnRace: func(rcx stint.Race) {
			for a := rcx.Addr &^ 3; a < rcx.Addr+rcx.Size; a += 4 {
				words[a] = true
			}
		}})
		buf := r.Arena().AllocWords("data", bufWords)
		if _, err := r.Run(g, func(nd *Node, id NodeID) {
			for _, a := range accesses[id] {
				if a.write {
					nd.StoreRange(buf, a.idx, a.n)
				} else {
					nd.LoadRange(buf, a.idx, a.n)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if len(words) != len(want) {
			t.Fatalf("seed %d: %d racing words, oracle %d", seed, len(words), len(want))
		}
		for w := range want {
			if !words[w] {
				t.Fatalf("seed %d: missed racing word %#x", seed, w)
			}
		}
	}
}

func TestGraphNames(t *testing.T) {
	g := NewGraph()
	id := g.Node("compile")
	if g.Name(id) != "compile" || g.Len() != 1 {
		t.Fatal("node bookkeeping broken")
	}
}
